// Request-scoped tracing: every query gets a TraceContext (its trace id),
// and instrumented layers append timestamped events — enqueue, dequeue,
// screen, escalate, align, fallback — to a lock-free bounded per-thread sink
// as the query moves reader -> scheduler -> prefilter -> engine lanes. A
// TimelineWriter turns the collected log into Chrome-trace/Perfetto JSON:
// one track per worker thread, one async span per query, with lane
// occupancy and (when --perf-counters is on) IPC / L1D-miss annotations on
// every slice.
//
// Design rules:
//   - Zero cost when off. Every recording call starts with
//     query_trace_enabled(): a single relaxed atomic load, and a constexpr
//     `false` (whole call compiled out) when the build sets
//     VALIGN_ENABLE_QUERY_TRACE=0. Nothing here allocates or takes a lock on
//     the hot path even when tracing is on.
//   - Single-producer sinks. Each thread owns one bounded event buffer;
//     appends are a relaxed index load + slot write + release index store.
//     When the buffer is full, events are *dropped and counted* — tracing
//     must never apply back-pressure to the pipeline it observes.
//   - Contexts travel by value. A TraceContext is just the query's 32-bit
//     trace id; layers pass copies (scheduler -> pipeline shard -> dispatch)
//     and each event records the id plus the recording thread, so the
//     timeline can stitch cross-thread query journeys back together.
//
// Collection (collect_query_trace) and control (reset/capacity) are
// mutex-guarded and meant for run boundaries, not the hot path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef VALIGN_ENABLE_QUERY_TRACE
#define VALIGN_ENABLE_QUERY_TRACE 1
#endif

#if VALIGN_ENABLE_QUERY_TRACE
#include <atomic>
#endif

namespace valign::obs {

/// What happened. Slice kinds (recorded with a duration) and instant kinds
/// (dur_ns = 0) share the enum; TimelineWriter picks the Chrome phase.
enum class TraceEventKind : std::uint8_t {
  Stage,       ///< Slice: a coarse pipeline stage (a0 = obs::Stage index).
  Align,       ///< Slice: full-DP alignment of a block/shard (a0 = pairs, a1 = lanes).
  Screen,      ///< Slice: prefilter prescreen of a block (a0 = pairs, a1 = lanes).
  Escalate,    ///< Slice: exact re-alignment of screen survivors (a0 = pairs, a1 = lanes).
  QueryBegin,  ///< Instant: query admitted to the run (opens the async span).
  QueryEnd,    ///< Instant: query's hits reduced (a0 = hits kept; closes the span).
  Enqueue,     ///< Instant: shard pushed to the pipeline queue (a0 = db base, a1 = size).
  Dequeue,     ///< Instant: shard popped by a worker (a0 = db base, a1 = size).
  Fallback,    ///< Instant: lane-packed result saturated, intra ladder re-ran (a0 = pair, a1 = bits).
  Retry,       ///< Instant: width-retry / transient retry (a0 = attempt or bits).
  Degraded,    ///< Instant: work unit failed and was skipped under --max-errors.
  Quarantine,  ///< Instant: malformed records quarantined (a0 = records).
  Flush,       ///< Instant: periodic metrics snapshot written (a0 = seq).
  kCount_,
};

inline constexpr int kTraceEventKindCount = static_cast<int>(TraceEventKind::kCount_);

[[nodiscard]] const char* to_string(TraceEventKind k);

/// Sentinel query id for events not attributable to one query.
inline constexpr std::uint32_t kNoQuery = 0xffffffffu;

/// One recorded event. Timestamps are nanoseconds on the steady clock,
/// relative to a process-wide trace epoch (first use). dur_ns == 0 marks an
/// instant. hw_* are per-slice deltas of this thread's counters, populated
/// only when --perf-counters is on and the PMU probe succeeded.
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int64_t a0 = 0;              ///< Kind-specific argument (see enum docs).
  std::int64_t a1 = 0;
  std::uint64_t hw_cycles = 0;
  std::uint64_t hw_instructions = 0;
  std::uint64_t hw_l1d_misses = 0;
  std::uint32_t query = kNoQuery;
  TraceEventKind kind = TraceEventKind::Stage;
};

/// Whether this build compiled the tracing sites in (the CLI uses this to
/// reject --trace-timeline instead of writing an empty timeline).
[[nodiscard]] constexpr bool query_trace_compiled() noexcept {
  return VALIGN_ENABLE_QUERY_TRACE != 0;
}

/// Runtime gate. With VALIGN_ENABLE_QUERY_TRACE=0 the getter is constexpr
/// false and every recording call in the binary is dead code.
#if VALIGN_ENABLE_QUERY_TRACE
namespace detail {
inline std::atomic<bool> g_query_trace{false};
}  // namespace detail
[[nodiscard]] inline bool query_trace_enabled() noexcept {
  return detail::g_query_trace.load(std::memory_order_relaxed);
}
#else
[[nodiscard]] constexpr bool query_trace_enabled() noexcept { return false; }
#endif
void set_query_trace_enabled(bool on) noexcept;  ///< No-op when compiled out.

/// Events per thread before drops start. Takes effect for sinks created
/// afterwards and for all sinks at the next query_trace_reset().
void query_trace_set_capacity(std::size_t events_per_thread);
[[nodiscard]] std::size_t query_trace_capacity();

/// Clears all recorded events and drop counters. Only call while no thread
/// is recording (run boundaries): buffers are resized here.
void query_trace_reset();

/// Labels the calling thread's track in the exported timeline ("worker-3",
/// "main", ...). Safe to call any time; last writer wins.
void set_trace_thread_name(const std::string& name);

/// One thread's collected events.
struct ThreadTrace {
  int tid = 0;                     ///< Small sequential id (registration order).
  std::string name;                ///< From set_trace_thread_name; may be empty.
  std::uint64_t dropped = 0;       ///< Events lost to the capacity bound.
  std::vector<TraceEvent> events;  ///< In recording order (ts ascending per thread).
};

/// Everything recorded since the last reset.
struct TraceLog {
  std::vector<ThreadTrace> threads;
  std::uint64_t dropped = 0;  ///< Sum over threads.
  [[nodiscard]] std::size_t event_count() const noexcept;
};

/// Snapshots all per-thread sinks (acquire reads; safe while recording
/// continues, events appended after the snapshot are simply not included).
[[nodiscard]] TraceLog collect_query_trace();

/// The per-query trace id, passed by value through scheduler, pipeline and
/// dispatch. Default-constructed contexts record kNoQuery.
class TraceContext {
 public:
  TraceContext() = default;
  explicit TraceContext(std::uint32_t query_id) noexcept : id_(query_id) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  /// Records an instant event attributed to this query (no-op when tracing
  /// is off).
  void instant(TraceEventKind kind, std::int64_t a0 = 0,
               std::int64_t a1 = 0) const noexcept;

 private:
  std::uint32_t id_ = kNoQuery;
};

/// Records an instant not tied to a context (queue-level events).
void trace_instant(TraceEventKind kind, std::uint32_t query = kNoQuery,
                   std::int64_t a0 = 0, std::int64_t a1 = 0) noexcept;

/// RAII slice: records kind + args with the enclosed duration on this
/// thread's track. When --perf-counters is on, also attaches the cycles /
/// instructions / L1D-miss deltas of the enclosed region. Construction when
/// tracing is off is one relaxed load.
class TraceSlice {
 public:
  explicit TraceSlice(TraceEventKind kind, TraceContext ctx = {},
                      std::int64_t a0 = 0, std::int64_t a1 = 0) noexcept;
  ~TraceSlice() { stop(); }

  TraceSlice(const TraceSlice&) = delete;
  TraceSlice& operator=(const TraceSlice&) = delete;

  /// Updates the slice arguments before it closes (e.g. survivor counts
  /// known only after the work ran).
  void set_args(std::int64_t a0, std::int64_t a1) noexcept;
  /// Ends the slice early (idempotent).
  void stop() noexcept;

 private:
  TraceEvent ev_{};
  std::uint64_t hw_cycles0_ = 0;
  std::uint64_t hw_instructions0_ = 0;
  std::uint64_t hw_l1d0_ = 0;
  bool active_ = false;
  bool hw_ = false;
};

/// Renders a TraceLog as Chrome-trace / Perfetto JSON (the "JSON Array
/// Format" inside an object wrapper): thread-name metadata, one `X`
/// (complete) event per slice, `i` instants, and `b`/`e` async-nestable
/// spans per query so a query's journey across threads reads as one row.
/// Timestamps are microseconds (fractional) from the trace epoch.
class TimelineWriter {
 public:
  explicit TimelineWriter(TraceLog log) : log_(std::move(log)) {}

  void write_json(std::ostream& out) const;
  /// Atomic write: temp file in the same directory, then rename. Throws
  /// valign::Error on I/O failure.
  void write_file(const std::string& path) const;
  [[nodiscard]] std::string json() const;

  [[nodiscard]] const TraceLog& log() const noexcept { return log_; }

 private:
  TraceLog log_;
};

}  // namespace valign::obs
