#include "valign/obs/flush.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "valign/common.hpp"
#include "valign/obs/metrics.hpp"
#include "valign/obs/query_trace.hpp"

namespace valign::obs {

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw Error("cannot open output file: " + tmp);
    body(out);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("failed writing output file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename " + tmp + " to " + path);
  }
}

MetricsFlusher::MetricsFlusher(std::string path, std::uint64_t interval_ms,
                               RunReport proto)
    : path_(std::move(path)),
      interval_ms_(interval_ms > 0 ? interval_ms : 1),
      proto_(std::move(proto)) {
  thread_ = std::thread([this] { run(); });
}

MetricsFlusher::~MetricsFlusher() { stop(); }

void MetricsFlusher::stop() noexcept {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsFlusher::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    try {
      flush_once();
    } catch (...) {
      // Snapshots are best-effort; the exit-time report still goes through
      // the caller's error handling.
    }
    lock.lock();
  }
  lock.unlock();
  // Final flush so runs shorter than one interval still leave live state.
  try {
    flush_once();
  } catch (...) {
  }
}

void MetricsFlusher::flush_once() {
  const std::uint64_t seq = flushes_.fetch_add(1, std::memory_order_relaxed) + 1;
  Registry::global().counter("runtime.metrics.flushes").add();
  RunReport rr = proto_;
  rr.live_snapshot = true;
  rr.snapshot_seq = seq;
  rr.capture_environment();
  rr.write_file(path_);  // write_file goes through atomic_write_file
  trace_instant(TraceEventKind::Flush, kNoQuery, static_cast<std::int64_t>(seq));
}

}  // namespace valign::obs
