#include "valign/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "valign/common.hpp"

namespace valign::obs::json {

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string Value::str_or(const std::string& key,
                          const std::string& fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::String ? v->string : fallback;
}

double Value::num_or(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

std::uint64_t Value::u64_or(const std::string& key, std::uint64_t fallback) const {
  const Value* v = get(key);
  if (v == nullptr || v->kind != Kind::Number || v->number < 0) return fallback;
  return static_cast<std::uint64_t>(v->number);
}

bool Value::bool_or(const std::string& key, bool fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& what)
      : s_(text), what_(what) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error(what_ + ": " + msg + " (at byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::Bool;
        if (consume_literal("true")) v.boolean = true;
        else if (consume_literal("false")) v.boolean = false;
        else fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      v.object.emplace(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Producers only escape control characters; anything else is kept
          // as a replacement byte rather than implementing full UTF-16.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  const std::string& what_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& what) {
  return Parser(text, what).parse();
}

void write_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;  // JSON has no inf/nan; a zero is the least-surprising stand-in
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

}  // namespace valign::obs::json
