#include "valign/obs/bench_report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "valign/common.hpp"

namespace valign::obs {

namespace {

// --- emission ----------------------------------------------------------------

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Doubles are emitted with enough digits to round-trip (%.17g collapses to
/// short forms for the common values).
void json_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;  // JSON has no inf/nan; a zero is the least-surprising stand-in
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

// --- parsing -----------------------------------------------------------------
//
// Minimal recursive-descent JSON reader: just enough for the bench-report
// schema (objects, arrays, strings, numbers, bools, null), strict on
// structure so malformed baselines fail loudly instead of diffing garbage.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback = "") const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::String ? v->string : fallback;
  }
  [[nodiscard]] double num_or(const std::string& key, double fallback = 0.0) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
  }
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback = 0) const {
    const JsonValue* v = get(key);
    if (v == nullptr || v->kind != Kind::Number || v->number < 0) return fallback;
    return static_cast<std::uint64_t>(v->number);
  }
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback = false) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("bench report JSON: " + what + " (at byte " +
                std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (consume_literal("true")) v.boolean = true;
        else if (consume_literal("false")) v.boolean = false;
        else fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      v.object.emplace(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Producers only escape control characters; anything else is kept
          // as a replacement byte rather than implementing full UTF-16.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

HwCounts parse_hw(const JsonValue& v) {
  HwCounts c;
  c.cycles = v.u64_or("cycles");
  c.instructions = v.u64_or("instructions");
  c.branch_misses = v.u64_or("branch_misses");
  c.l1d_misses = v.u64_or("l1d_misses");
  c.llc_misses = v.u64_or("llc_misses");
  c.ns_enabled = v.u64_or("ns_enabled");
  c.ns_running = v.u64_or("ns_running");
  return c;
}

}  // namespace

const BenchScenario* BenchReport::find(const std::string& name) const {
  for (const BenchScenario& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void BenchReport::write_json(std::ostream& out) const {
  out << R"({"schema":)";
  json_string(out, schema);
  out << R"(,"command":)";
  json_string(out, command);

  out << R"(,"provenance":{"tool_version":)";
  json_string(out, provenance.tool_version);
  out << R"(,"isa":)";
  json_string(out, provenance.isa);
  out << R"(,"cpu_model":)";
  json_string(out, provenance.cpu_model);
  out << R"(,"hostname":)";
  json_string(out, provenance.hostname);
  out << R"(,"timestamp_utc":)";
  json_string(out, provenance.timestamp_utc);
  out << R"(,"git_describe":)";
  json_string(out, provenance.git_describe);
  out << R"(,"compiler":)";
  json_string(out, provenance.compiler);
  out << R"(,"threads":)" << provenance.threads;
  out << R"(,"bench_scale":)";
  json_double(out, provenance.bench_scale);
  out << "}";

  out << R"(,"hw_reason":)";
  json_string(out, hw_reason);

  out << R"(,"scenarios":[)";
  bool first = true;
  for (const BenchScenario& s : scenarios) {
    if (!first) out << ',';
    first = false;
    out << R"({"name":)";
    json_string(out, s.name);
    out << R"(,"reps":)" << s.reps;
    out << R"(,"sec_min":)";
    json_double(out, s.sec_min);
    out << R"(,"sec_median":)";
    json_double(out, s.sec_median);
    out << R"(,"sec_max":)";
    json_double(out, s.sec_max);
    out << R"(,"cells":)" << s.cells;
    out << R"(,"gcups_median":)";
    json_double(out, s.gcups_median);
    out << R"(,"hw":{"available":)" << (s.hw_available ? "true" : "false");
    if (s.hw_available) {
      out << R"(,"cycles":)" << s.hw.cycles << R"(,"instructions":)"
          << s.hw.instructions << R"(,"ipc":)";
      json_double(out, s.hw.ipc());
      out << R"(,"branch_misses":)" << s.hw.branch_misses << R"(,"l1d_misses":)"
          << s.hw.l1d_misses << R"(,"llc_misses":)" << s.hw.llc_misses
          << R"(,"ns_enabled":)" << s.hw.ns_enabled << R"(,"ns_running":)"
          << s.hw.ns_running;
    }
    out << "}}";
  }
  out << "]}\n";
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open bench report output file: " + path);
  write_json(out);
}

std::string BenchReport::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

BenchReport BenchReport::from_json(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::Object) {
    throw Error("bench report JSON: top level must be an object");
  }
  BenchReport r;
  r.schema = root.str_or("schema");
  // Tolerate any minor evolution within major version 1 ("…/1", "…/1.3"),
  // reject everything else — including other majors like "…/12".
  const std::string prefix = "valign.bench_report/1";
  if (r.schema.rfind(prefix, 0) != 0 ||
      (r.schema.size() > prefix.size() && r.schema[prefix.size()] != '.')) {
    throw Error("not a valign.bench_report/1 document (schema: \"" + r.schema +
                "\")");
  }
  r.command = root.str_or("command");
  r.hw_reason = root.str_or("hw_reason");
  if (const JsonValue* p = root.get("provenance")) {
    r.provenance.tool_version = p->str_or("tool_version");
    r.provenance.isa = p->str_or("isa");
    r.provenance.cpu_model = p->str_or("cpu_model");
    r.provenance.hostname = p->str_or("hostname");
    r.provenance.timestamp_utc = p->str_or("timestamp_utc");
    r.provenance.git_describe = p->str_or("git_describe");
    r.provenance.compiler = p->str_or("compiler");
    r.provenance.threads = static_cast<int>(p->num_or("threads", 1));
    r.provenance.bench_scale = p->num_or("bench_scale", 1.0);
  }
  const JsonValue* scen = root.get("scenarios");
  if (scen == nullptr || scen->kind != JsonValue::Kind::Array) {
    throw Error("bench report JSON: missing \"scenarios\" array");
  }
  for (const JsonValue& sv : scen->array) {
    if (sv.kind != JsonValue::Kind::Object) {
      throw Error("bench report JSON: scenario entries must be objects");
    }
    BenchScenario s;
    s.name = sv.str_or("name");
    if (s.name.empty()) throw Error("bench report JSON: scenario without a name");
    s.reps = static_cast<int>(sv.num_or("reps"));
    s.sec_min = sv.num_or("sec_min");
    s.sec_median = sv.num_or("sec_median");
    s.sec_max = sv.num_or("sec_max");
    s.cells = sv.u64_or("cells");
    s.gcups_median = sv.num_or("gcups_median");
    if (const JsonValue* hw = sv.get("hw")) {
      s.hw_available = hw->bool_or("available");
      if (s.hw_available) s.hw = parse_hw(*hw);
    }
    r.scenarios.push_back(std::move(s));
  }
  return r;
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench report: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

}  // namespace valign::obs
