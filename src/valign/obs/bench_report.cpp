#include "valign/obs/bench_report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "valign/common.hpp"
#include "valign/obs/json.hpp"

namespace valign::obs {

namespace {

// The parser/emitters live in obs/json.{hpp,cpp}; the short aliases keep the
// hand-rolled serialization below readable.

void json_string(std::ostream& out, const std::string& s) {
  json::write_string(out, s);
}

void json_double(std::ostream& out, double v) { json::write_double(out, v); }

HwCounts parse_hw(const json::Value& v) {
  HwCounts c;
  c.cycles = v.u64_or("cycles");
  c.instructions = v.u64_or("instructions");
  c.branch_misses = v.u64_or("branch_misses");
  c.l1d_misses = v.u64_or("l1d_misses");
  c.llc_misses = v.u64_or("llc_misses");
  c.ns_enabled = v.u64_or("ns_enabled");
  c.ns_running = v.u64_or("ns_running");
  return c;
}

}  // namespace

const BenchScenario* BenchReport::find(const std::string& name) const {
  for (const BenchScenario& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void BenchReport::write_json(std::ostream& out) const {
  out << R"({"schema":)";
  json_string(out, schema);
  out << R"(,"command":)";
  json_string(out, command);

  out << R"(,"provenance":{"tool_version":)";
  json_string(out, provenance.tool_version);
  out << R"(,"isa":)";
  json_string(out, provenance.isa);
  out << R"(,"cpu_model":)";
  json_string(out, provenance.cpu_model);
  out << R"(,"hostname":)";
  json_string(out, provenance.hostname);
  out << R"(,"timestamp_utc":)";
  json_string(out, provenance.timestamp_utc);
  out << R"(,"git_describe":)";
  json_string(out, provenance.git_describe);
  out << R"(,"compiler":)";
  json_string(out, provenance.compiler);
  out << R"(,"threads":)" << provenance.threads;
  out << R"(,"bench_scale":)";
  json_double(out, provenance.bench_scale);
  out << "}";

  out << R"(,"hw_reason":)";
  json_string(out, hw_reason);

  out << R"(,"scenarios":[)";
  bool first = true;
  for (const BenchScenario& s : scenarios) {
    if (!first) out << ',';
    first = false;
    out << R"({"name":)";
    json_string(out, s.name);
    out << R"(,"reps":)" << s.reps;
    out << R"(,"sec_min":)";
    json_double(out, s.sec_min);
    out << R"(,"sec_median":)";
    json_double(out, s.sec_median);
    out << R"(,"sec_max":)";
    json_double(out, s.sec_max);
    out << R"(,"cells":)" << s.cells;
    out << R"(,"gcups_median":)";
    json_double(out, s.gcups_median);
    out << R"(,"hw":{"available":)" << (s.hw_available ? "true" : "false");
    if (s.hw_available) {
      out << R"(,"cycles":)" << s.hw.cycles << R"(,"instructions":)"
          << s.hw.instructions << R"(,"ipc":)";
      json_double(out, s.hw.ipc());
      out << R"(,"branch_misses":)" << s.hw.branch_misses << R"(,"l1d_misses":)"
          << s.hw.l1d_misses << R"(,"llc_misses":)" << s.hw.llc_misses
          << R"(,"ns_enabled":)" << s.hw.ns_enabled << R"(,"ns_running":)"
          << s.hw.ns_running;
    }
    out << "}}";
  }
  out << "]}\n";
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open bench report output file: " + path);
  write_json(out);
}

std::string BenchReport::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

BenchReport BenchReport::from_json(const std::string& text) {
  const json::Value root = json::parse(text, "bench report JSON");
  if (root.kind != json::Value::Kind::Object) {
    throw Error("bench report JSON: top level must be an object");
  }
  BenchReport r;
  r.schema = root.str_or("schema");
  // Tolerate any minor evolution within major version 1 ("…/1", "…/1.3"),
  // reject everything else — including other majors like "…/12".
  const std::string prefix = "valign.bench_report/1";
  if (r.schema.rfind(prefix, 0) != 0 ||
      (r.schema.size() > prefix.size() && r.schema[prefix.size()] != '.')) {
    throw Error("not a valign.bench_report/1 document (schema: \"" + r.schema +
                "\")");
  }
  r.command = root.str_or("command");
  r.hw_reason = root.str_or("hw_reason");
  if (const json::Value* p = root.get("provenance")) {
    r.provenance.tool_version = p->str_or("tool_version");
    r.provenance.isa = p->str_or("isa");
    r.provenance.cpu_model = p->str_or("cpu_model");
    r.provenance.hostname = p->str_or("hostname");
    r.provenance.timestamp_utc = p->str_or("timestamp_utc");
    r.provenance.git_describe = p->str_or("git_describe");
    r.provenance.compiler = p->str_or("compiler");
    r.provenance.threads = static_cast<int>(p->num_or("threads", 1));
    r.provenance.bench_scale = p->num_or("bench_scale", 1.0);
  }
  const json::Value* scen = root.get("scenarios");
  if (scen == nullptr || scen->kind != json::Value::Kind::Array) {
    throw Error("bench report JSON: missing \"scenarios\" array");
  }
  for (const json::Value& sv : scen->array) {
    if (sv.kind != json::Value::Kind::Object) {
      throw Error("bench report JSON: scenario entries must be objects");
    }
    BenchScenario s;
    s.name = sv.str_or("name");
    if (s.name.empty()) throw Error("bench report JSON: scenario without a name");
    s.reps = static_cast<int>(sv.num_or("reps"));
    s.sec_min = sv.num_or("sec_min");
    s.sec_median = sv.num_or("sec_median");
    s.sec_max = sv.num_or("sec_max");
    s.cells = sv.u64_or("cells");
    s.gcups_median = sv.num_or("gcups_median");
    if (const json::Value* hw = sv.get("hw")) {
      s.hw_available = hw->bool_or("available");
      if (s.hw_available) s.hw = parse_hw(*hw);
    }
    r.scenarios.push_back(std::move(s));
  }
  return r;
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench report: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

}  // namespace valign::obs
