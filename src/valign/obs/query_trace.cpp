#include "valign/obs/query_trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "valign/common.hpp"
#include "valign/obs/flush.hpp"
#include "valign/obs/json.hpp"
#include "valign/obs/perf.hpp"
#include "valign/obs/trace.hpp"

namespace valign::obs {

namespace {

/// Default per-thread bound: 64Ki events x 64 B = 4 MiB per recording thread.
constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

/// One thread's bounded single-producer event buffer. The owner thread is
/// the only writer: an append is a relaxed load of its own count, a slot
/// write, and a release store publishing the slot to acquire-side readers
/// (collect_query_trace). A full buffer drops and counts — never blocks.
struct Sink {
  explicit Sink(std::size_t cap) : buf(cap) {}

  std::vector<TraceEvent> buf;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  int tid = 0;         ///< Registration order, starting at 1 (0 = query track).
  std::string name;    ///< Guarded by Registry::mu.

  void append(const TraceEvent& ev) noexcept {
    const std::size_t n = count.load(std::memory_order_relaxed);
    if (n >= buf.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf[n] = ev;
    count.store(n + 1, std::memory_order_release);
  }
};

struct SinkRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Sink>> sinks;  ///< Guarded by mu; never shrinks.
  std::atomic<std::size_t> capacity{kDefaultCapacity};
};

SinkRegistry& registry() {
  static SinkRegistry r;
  return r;
}

/// The calling thread's sink, registered on first use. The registry keeps a
/// shared_ptr so events survive thread exit (pipeline workers are joined
/// before collection). Returns nullptr only if registration failed.
Sink* this_thread_sink() noexcept {
  thread_local std::shared_ptr<Sink> t_sink;
  if (t_sink == nullptr) {
    try {
      SinkRegistry& r = registry();
      auto s = std::make_shared<Sink>(r.capacity.load(std::memory_order_relaxed));
      const std::lock_guard<std::mutex> lock(r.mu);
      s->tid = static_cast<int>(r.sinks.size()) + 1;
      r.sinks.push_back(s);
      t_sink = std::move(s);
    } catch (...) {
      return nullptr;
    }
  }
  return t_sink.get();
}

/// Nanoseconds since the process-wide trace epoch (first call).
std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  const auto d = std::chrono::steady_clock::now() - epoch;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

void append_event(const TraceEvent& ev) noexcept {
  Sink* s = this_thread_sink();
  if (s != nullptr) s->append(ev);
}

}  // namespace

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::Stage: return "stage";
    case TraceEventKind::Align: return "align";
    case TraceEventKind::Screen: return "screen";
    case TraceEventKind::Escalate: return "escalate";
    case TraceEventKind::QueryBegin: return "query_begin";
    case TraceEventKind::QueryEnd: return "query_end";
    case TraceEventKind::Enqueue: return "enqueue";
    case TraceEventKind::Dequeue: return "dequeue";
    case TraceEventKind::Fallback: return "fallback";
    case TraceEventKind::Retry: return "retry";
    case TraceEventKind::Degraded: return "degraded";
    case TraceEventKind::Quarantine: return "quarantine";
    case TraceEventKind::Flush: return "flush";
    case TraceEventKind::kCount_: break;
  }
  return "unknown";
}

void set_query_trace_enabled(bool on) noexcept {
#if VALIGN_ENABLE_QUERY_TRACE
  detail::g_query_trace.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void query_trace_set_capacity(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  registry().capacity.store(events_per_thread, std::memory_order_relaxed);
}

std::size_t query_trace_capacity() {
  return registry().capacity.load(std::memory_order_relaxed);
}

void query_trace_reset() {
  SinkRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const std::size_t cap = r.capacity.load(std::memory_order_relaxed);
  for (const auto& s : r.sinks) {
    s->count.store(0, std::memory_order_relaxed);
    s->dropped.store(0, std::memory_order_relaxed);
    if (s->buf.size() != cap) std::vector<TraceEvent>(cap).swap(s->buf);
  }
}

void set_trace_thread_name(const std::string& name) {
  if (!query_trace_enabled()) return;
  Sink* s = this_thread_sink();
  if (s == nullptr) return;
  const std::lock_guard<std::mutex> lock(registry().mu);
  s->name = name;
}

std::size_t TraceLog::event_count() const noexcept {
  std::size_t n = 0;
  for (const ThreadTrace& t : threads) n += t.events.size();
  return n;
}

TraceLog collect_query_trace() {
  TraceLog log;
  SinkRegistry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.sinks) {
    const std::size_t n = s->count.load(std::memory_order_acquire);
    const std::uint64_t dropped = s->dropped.load(std::memory_order_relaxed);
    if (n == 0 && dropped == 0) continue;
    ThreadTrace t;
    t.tid = s->tid;
    t.name = s->name;
    t.dropped = dropped;
    t.events.assign(s->buf.begin(), s->buf.begin() + static_cast<long>(n));
    log.dropped += dropped;
    log.threads.push_back(std::move(t));
  }
  return log;
}

void TraceContext::instant(TraceEventKind kind, std::int64_t a0,
                           std::int64_t a1) const noexcept {
  trace_instant(kind, id_, a0, a1);
}

void trace_instant(TraceEventKind kind, std::uint32_t query, std::int64_t a0,
                   std::int64_t a1) noexcept {
  if (!query_trace_enabled()) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.query = query;
  ev.a0 = a0;
  ev.a1 = a1;
  ev.ts_ns = now_ns();
  append_event(ev);
}

TraceSlice::TraceSlice(TraceEventKind kind, TraceContext ctx, std::int64_t a0,
                       std::int64_t a1) noexcept {
  if (!query_trace_enabled()) return;
  active_ = true;
  ev_.kind = kind;
  ev_.query = ctx.id();
  ev_.a0 = a0;
  ev_.a1 = a1;
  if (perf_enabled()) {
    HwCounts c;
    if (read_thread_counters(c)) {
      hw_ = true;
      hw_cycles0_ = c.cycles;
      hw_instructions0_ = c.instructions;
      hw_l1d0_ = c.l1d_misses;
    }
  }
  ev_.ts_ns = now_ns();
}

void TraceSlice::set_args(std::int64_t a0, std::int64_t a1) noexcept {
  ev_.a0 = a0;
  ev_.a1 = a1;
}

void TraceSlice::stop() noexcept {
  if (!active_) return;
  active_ = false;
  const std::uint64_t end = now_ns();
  ev_.dur_ns = end > ev_.ts_ns ? end - ev_.ts_ns : 1;
  if (hw_) {
    HwCounts c;
    if (read_thread_counters(c)) {
      ev_.hw_cycles = c.cycles - hw_cycles0_;
      ev_.hw_instructions = c.instructions - hw_instructions0_;
      ev_.hw_l1d_misses = c.l1d_misses - hw_l1d0_;
    }
  }
  append_event(ev_);
}

// --- timeline export ---------------------------------------------------------

namespace {

/// Chrome-trace name + arg labels per kind. Index = TraceEventKind value.
struct KindMeta {
  const char* cat;
  const char* arg0;  ///< nullptr = omit.
  const char* arg1;
};

constexpr KindMeta kKindMeta[kTraceEventKindCount] = {
    {"stage", "stage", nullptr},        // Stage (name resolved separately)
    {"work", "pairs", "lanes"},         // Align
    {"work", "pairs", "lanes"},         // Screen
    {"work", "pairs", "lanes"},         // Escalate
    {"query", nullptr, nullptr},        // QueryBegin
    {"query", "hits", nullptr},         // QueryEnd
    {"queue", "db_base", "size"},       // Enqueue
    {"queue", "db_base", "size"},       // Dequeue
    {"event", "pair", "bits"},          // Fallback
    {"event", "attempt", "bits"},       // Retry
    {"event", "units", nullptr},        // Degraded
    {"event", "records", nullptr},      // Quarantine
    {"event", "seq", nullptr},          // Flush
};

void write_us(std::ostream& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  out << buf;
}

/// The slice name shown on the track: stage slices carry the stage's own
/// name ("parse", "align", ...), everything else the kind name.
std::string event_name(const TraceEvent& ev) {
  if (ev.kind == TraceEventKind::Stage) {
    const auto s = static_cast<int>(ev.a0);
    if (s >= 0 && s < kStageCount) {
      return std::string("stage.") + to_string(static_cast<Stage>(s));
    }
    return "stage.unknown";
  }
  return to_string(ev.kind);
}

void write_args(std::ostream& out, const TraceEvent& ev) {
  const KindMeta& meta = kKindMeta[static_cast<int>(ev.kind)];
  out << "{";
  bool first = true;
  const auto field = [&](const char* key) -> std::ostream& {
    if (!first) out << ',';
    first = false;
    out << '"' << key << "\":";
    return out;
  };
  if (ev.query != kNoQuery) field("query") << ev.query;
  if (meta.arg0 != nullptr && ev.kind != TraceEventKind::Stage) {
    field(meta.arg0) << ev.a0;
  }
  if (meta.arg1 != nullptr) field(meta.arg1) << ev.a1;
  if (ev.hw_cycles > 0) {
    field("ipc");
    json::write_double(out, static_cast<double>(ev.hw_instructions) /
                                static_cast<double>(ev.hw_cycles));
    field("l1d_misses") << ev.hw_l1d_misses;
  }
  out << "}";
}

}  // namespace

void TimelineWriter::write_json(std::ostream& out) const {
  // Merge all per-thread streams, sorted by timestamp (ties: tid, then kind)
  // so viewers and validators see a monotone event list.
  struct Ref {
    const TraceEvent* ev;
    int tid;
  };
  std::vector<Ref> refs;
  refs.reserve(log_.event_count());
  for (const ThreadTrace& t : log_.threads) {
    for (const TraceEvent& ev : t.events) refs.push_back({&ev, t.tid});
  }
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ev->ts_ns != b.ev->ts_ns) return a.ev->ts_ns < b.ev->ts_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return static_cast<int>(a.ev->kind) < static_cast<int>(b.ev->kind);
  });

  // Async span per query: [first event ts, last event end].
  struct Span {
    std::uint64_t begin_ns = ~std::uint64_t{0};
    std::uint64_t end_ns = 0;
  };
  std::map<std::uint32_t, Span> queries;
  for (const Ref& r : refs) {
    if (r.ev->query == kNoQuery) continue;
    Span& s = queries[r.ev->query];
    s.begin_ns = std::min(s.begin_ns, r.ev->ts_ns);
    s.end_ns = std::max(s.end_ns, r.ev->ts_ns + r.ev->dur_ns);
  }

  out << R"({"schema":"valign.trace_timeline/1","displayTimeUnit":"ms")";
  out << R"(,"otherData":{"tool":"valign","events":)" << log_.event_count()
      << R"(,"queries":)" << queries.size() << R"(,"dropped":)" << log_.dropped
      << "}";
  out << R"(,"traceEvents":[)";
  bool first = true;
  const auto emit = [&](const char* /*tag*/) -> std::ostream& {
    if (!first) out << ',';
    first = false;
    out << "\n";
    return out;
  };

  // Track metadata: pid 1 is the process, tid 0 hosts the per-query async
  // spans, real threads start at tid 1.
  emit("m") << R"({"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"valign"}})";
  emit("m") << R"({"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"queries"}})";
  for (const ThreadTrace& t : log_.threads) {
    emit("m") << R"({"ph":"M","pid":1,"tid":)" << t.tid
              << R"(,"name":"thread_name","args":)";
    out << R"({"name":)";
    json::write_string(out, t.name.empty()
                                ? "thread-" + std::to_string(t.tid)
                                : t.name);
    out << "}}";
  }

  // One b/e async-nestable pair per query on the shared query track.
  for (const auto& [query, span] : queries) {
    char id[16];
    std::snprintf(id, sizeof id, "0x%x", query);
    emit("b") << R"({"ph":"b","pid":1,"tid":0,"cat":"query","id":")" << id
              << R"(","name":"query )" << query << R"(","ts":)";
    write_us(out, span.begin_ns);
    out << "}";
    emit("e") << R"({"ph":"e","pid":1,"tid":0,"cat":"query","id":")" << id
              << R"(","name":"query )" << query << R"(","ts":)";
    write_us(out, span.end_ns);
    out << "}";
  }

  // The events themselves: X slices and i instants on their thread's track.
  for (const Ref& r : refs) {
    const TraceEvent& ev = *r.ev;
    const KindMeta& meta = kKindMeta[static_cast<int>(ev.kind)];
    const bool slice = ev.dur_ns > 0;
    emit("x") << R"({"ph":")" << (slice ? 'X' : 'i') << R"(","pid":1,"tid":)"
              << r.tid << R"(,"cat":")" << meta.cat << R"(","name":)";
    json::write_string(out, event_name(ev));
    out << R"(,"ts":)";
    write_us(out, ev.ts_ns);
    if (slice) {
      out << R"(,"dur":)";
      write_us(out, ev.dur_ns);
    } else {
      out << R"(,"s":"t")";
    }
    out << R"(,"args":)";
    write_args(out, ev);
    out << "}";
  }
  out << "\n]}\n";
}

void TimelineWriter::write_file(const std::string& path) const {
  atomic_write_file(path, [this](std::ostream& out) { write_json(out); });
}

std::string TimelineWriter::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace valign::obs
