#include "valign/obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "valign/obs/flush.hpp"
#include "valign/obs/provenance.hpp"
#include "valign/simd/arch.hpp"
#include "valign/version.hpp"

namespace valign::obs {

namespace {

/// Minimal JSON emitter: handles the escaping this schema needs (metric and
/// sequence names are ASCII; control characters are escaped numerically).
void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// CSV field under RFC 4180 rules: quoted (with doubled inner quotes) only
/// when the value contains a comma, quote or line break, so the common case
/// stays byte-identical with the historical output.
void csv_field(std::ostream& out, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    out << s;
    return;
  }
  out << '"';
  for (const char c : s) {
    if (c == '"') out << "\"\"";
    else out << c;
  }
  out << '"';
}

/// Comma-separating helper: writes the separator before every item but the
/// first.
class Sep {
 public:
  explicit Sep(std::ostream& out, const char* sep = ",") : out_(&out), sep_(sep) {}
  void next() {
    if (!first_) *out_ << sep_;
    first_ = false;
  }

 private:
  std::ostream* out_;
  const char* sep_;
  bool first_ = true;
};

template <class T>
void json_array(std::ostream& out, const T& values) {
  out << '[';
  Sep sep(out);
  for (const auto v : values) {
    sep.next();
    out << v;
  }
  out << ']';
}

void json_pass_hist(std::ostream& out, const PassHist& h) {
  out << R"({"buckets":)";
  json_array(out, h.counts);
  out << R"(,"last_bucket_is_overflow":true})";
}

void json_hw_counts(std::ostream& out, const HwCounts& c) {
  out << R"({"cycles":)" << c.cycles << R"(,"instructions":)" << c.instructions
      << R"(,"ipc":)" << c.ipc() << R"(,"branch_misses":)" << c.branch_misses
      << R"(,"l1d_misses":)" << c.l1d_misses << R"(,"llc_misses":)" << c.llc_misses
      << R"(,"ns_enabled":)" << c.ns_enabled << R"(,"ns_running":)" << c.ns_running
      << "}";
}

const char* kind_name(MetricSample::Kind k) {
  switch (k) {
    case MetricSample::Kind::Counter: return "counter";
    case MetricSample::Kind::Gauge: return "gauge";
    case MetricSample::Kind::Histogram: return "histogram";
  }
  return "?";
}

/// Stage indices ordered by stage *name*, so serialized stage sections are
/// deterministic and diff cleanly regardless of enum order.
std::array<int, kStageCount> stages_by_name() {
  std::array<int, kStageCount> order{};
  for (int s = 0; s < kStageCount; ++s) order[static_cast<std::size_t>(s)] = s;
  std::sort(order.begin(), order.end(), [](int a, int b) {
    return std::string_view(to_string(static_cast<Stage>(a))) <
           std::string_view(to_string(static_cast<Stage>(b)));
  });
  return order;
}

/// Metric samples ordered by name. Registry snapshots arrive sorted already
/// (std::map), but hand-assembled reports must serialize deterministically
/// too, so sorting is re-established here rather than assumed.
std::vector<const MetricSample*> metrics_by_name(const MetricsSnapshot& snap) {
  std::vector<const MetricSample*> order;
  order.reserve(snap.samples.size());
  for (const MetricSample& m : snap.samples) order.push_back(&m);
  std::stable_sort(order.begin(), order.end(),
                   [](const MetricSample* a, const MetricSample* b) {
                     return a->name < b->name;
                   });
  return order;
}

/// Unambiguous CSV row label for histogram bucket `i` of `n` total buckets:
/// `bucket_le_<bound>` for bounded buckets, `bucket_overflow` for the tail.
std::string metric_bucket_label(const std::vector<std::uint64_t>& bounds,
                                std::size_t i) {
  if (i < bounds.size()) return "bucket_le_" + std::to_string(bounds[i]);
  return "bucket_overflow";
}

/// PassHist rows: buckets 0..kBuckets-2 count exactly k passes; the final
/// bucket is "k or more".
std::string pass_bucket_label(int b) {
  if (b < PassHist::kBuckets - 1) return "bucket_" + std::to_string(b);
  return "bucket_" + std::to_string(PassHist::kBuckets - 1) + "_or_more";
}

}  // namespace

void RunReport::capture_environment() {
  version = valign::version();
  hostname = obs::hostname();
  timestamp_utc = obs::utc_timestamp();
  cpu_isa_level = valign::to_string(simd::best_isa());
  git_describe = obs::git_describe();
  stages = StageTable::global().snapshot();
  metrics = Registry::global().snapshot();
  const instrument::OpCounts ops = instrument::snapshot();
  op_counts = ops.by_category;

  hw_available = perf_enabled() && perf_available();
  if (!perf_enabled()) {
    hw_reason = "hardware counters not requested (--perf-counters)";
  } else {
    hw_reason = perf_probe().reason;
  }
  const std::array<HwCounts, kHwSlotCount> hw = HwTable::global().snapshot();
  for (int s = 0; s < kStageCount; ++s) {
    hw_stages[static_cast<std::size_t>(s)] = hw[static_cast<std::size_t>(s)];
  }
  hw_run = hw[kHwRunSlot];
}

void RunReport::write_json(std::ostream& out) const {
  out << "{";
  out << R"("schema":)";
  json_string(out, schema);
  out << R"(,"tool":)";
  json_string(out, tool);
  out << R"(,"version":)";
  json_string(out, version);
  out << R"(,"command":)";
  json_string(out, command);

  out << R"(,"provenance":{"hostname":)";
  json_string(out, hostname);
  out << R"(,"timestamp_utc":)";
  json_string(out, timestamp_utc);
  out << R"(,"cpu_isa_level":)";
  json_string(out, cpu_isa_level);
  out << R"(,"git_describe":)";
  json_string(out, git_describe);
  out << "}";

  out << R"(,"config":{"class":)";
  json_string(out, align_class);
  out << R"(,"approach":)";
  json_string(out, approach);
  out << R"(,"isa":)";
  json_string(out, isa);
  out << R"(,"matrix":)";
  json_string(out, matrix);
  out << R"(,"gap_open":)" << gap_open;
  out << R"(,"gap_extend":)" << gap_extend;
  out << R"(,"threads":)" << threads;
  out << R"(,"sched":)";
  json_string(out, sched);
  out << R"(,"engine":)";
  json_string(out, engine);
  out << R"(,"prefilter":)";
  json_string(out, prefilter_mode);
  out << R"(,"streamed":)" << (streamed ? "true" : "false");
  out << R"(,"cache_engines":)" << (cache_engines ? "true" : "false");
  out << "}";

  out << R"(,"workload":{"queries":)" << queries << R"(,"subjects":)" << subjects
      << R"(,"alignments":)" << alignments << R"(,"cells_real":)" << cells_real
      << R"(,"cells_padded":)" << totals.cells << "}";

  out << R"(,"perf":{"seconds":)" << seconds << R"(,"gcups_real":)" << gcups_real
      << R"(,"gcups_padded":)" << gcups_padded << "}";

  out << R"(,"snapshot":{"live":)" << (live_snapshot ? "true" : "false")
      << R"(,"seq":)" << snapshot_seq << "}";

  out << R"(,"widths":{)";
  {
    Sep sep(out);
    for (std::size_t i = 0; i < kWidthBits.size(); ++i) {
      sep.next();
      out << '"' << kWidthBits[i] << R"(":)" << width_counts[i];
    }
  }
  out << "}";

  out << R"(,"engine":{"columns":)" << totals.columns << R"(,"main_epochs":)"
      << totals.main_epochs << R"(,"corrective_epochs":)" << totals.corrective_epochs
      << R"(,"hscan_steps":)" << totals.hscan_steps << R"(,"scan_carry_cols":)"
      << totals.scan_carry_cols << R"(,"lazyf_pass_hist":)";
  json_pass_hist(out, totals.lazyf_hist);
  out << R"(,"hscan_step_hist":)";
  json_pass_hist(out, totals.hscan_hist);
  out << R"(,"prefix_pass_hist":)";
  json_pass_hist(out, totals.prefix_hist);
  out << R"(,"approaches":{)";
  {
    Sep sep(out);
    for (std::size_t a = 0; a < totals.approach_counts.size(); ++a) {
      sep.next();
      out << '"' << to_string(static_cast<Approach>(a)) << R"(":)"
          << totals.approach_counts[a];
    }
  }
  out << "}}";

  out << R"(,"engine_cache":{"lookups":)" << cache_lookups << R"(,"hits":)"
      << cache_hits << R"(,"builds":)" << cache_builds << R"(,"evictions":)"
      << cache_evictions << R"(,"profile_sets":)" << cache_profile_sets << "}";

  out << R"(,"profile_cache":{"lookups":)" << profile_cache_lookups
      << R"(,"hits":)" << profile_cache_hits << R"(,"builds":)"
      << profile_cache_builds << R"(,"evictions":)" << profile_cache_evictions
      << R"(,"fast_builds":)" << profile_cache_fast_builds << "}";

  out << R"(,"quarantine":{"lenient":)" << (lenient ? "true" : "false")
      << R"(,"max_errors":)" << max_errors << R"(,"records":)" << quarantined
      << R"(,"malformed":)" << quarantined_malformed << R"(,"oversized":)"
      << quarantined_oversized << R"(,"truncated":)" << quarantined_truncated
      << R"(,"worker_errors":)" << worker_errors << R"(,"shard_retries":)"
      << shard_retries << R"(,"records_dropped":)" << records_dropped << "}";

  out << R"(,"prefilter":{"enabled":)" << (prefilter_enabled ? "true" : "false")
      << R"(,"screened":)" << prefilter_screened << R"(,"escaped":)"
      << prefilter_escaped << R"(,"escalated":)" << prefilter_escalated
      << R"(,"saturated":)" << prefilter_saturated << R"(,"screen_failures":)"
      << prefilter_screen_failures << R"(,"chunks":)" << prefilter_chunks
      << R"(,"screen_cells":)" << prefilter_screen_cells << R"(,"selectivity":)"
      << prefilter_selectivity << "}";

  out << R"(,"op_counts":{)";
  {
    Sep sep(out);
    for (int c = 0; c < instrument::kOpCategoryCount; ++c) {
      sep.next();
      json_string(out, instrument::to_string(static_cast<instrument::OpCategory>(c)));
      out << ':' << op_counts[static_cast<std::size_t>(c)];
    }
  }
  out << "}";

  const std::array<int, kStageCount> stage_order = stages_by_name();
  out << R"(,"stages":{)";
  {
    Sep sep(out);
    for (const int s : stage_order) {
      const StageStats& st = stages[static_cast<std::size_t>(s)];
      sep.next();
      json_string(out, to_string(static_cast<Stage>(s)));
      out << R"(:{"spans":)" << st.spans << R"(,"seconds":)" << st.seconds()
          << R"(,"max_seconds":)" << static_cast<double>(st.ns_max) / 1e9 << "}";
    }
  }
  out << "}";

  out << R"(,"hw":{"available":)" << (hw_available ? "true" : "false")
      << R"(,"reason":)";
  json_string(out, hw_reason);
  out << R"(,"run":)";
  json_hw_counts(out, hw_run);
  out << R"(,"stages":{)";
  {
    Sep sep(out);
    for (const int s : stage_order) {
      sep.next();
      json_string(out, to_string(static_cast<Stage>(s)));
      out << ':';
      json_hw_counts(out, hw_stages[static_cast<std::size_t>(s)]);
    }
  }
  out << "}}";

  out << R"(,"metrics":[)";
  {
    Sep sep(out);
    for (const MetricSample* m : metrics_by_name(metrics)) {
      sep.next();
      out << R"({"name":)";
      json_string(out, m->name);
      out << R"(,"kind":")" << kind_name(m->kind) << '"';
      if (m->kind == MetricSample::Kind::Histogram) {
        out << R"(,"count":)" << m->value << R"(,"sum":)" << m->sum
            << R"(,"bounds":)";
        json_array(out, m->bucket_bounds);
        out << R"(,"counts":)";
        json_array(out, m->bucket_counts);
        // Bucket-interpolated estimates (histogram_quantile, metrics.hpp):
        // uniform within a bucket, saturating at the last finite bound.
        out << R"(,"p50":)" << histogram_quantile(m->bucket_bounds, m->bucket_counts, 0.50)
            << R"(,"p95":)" << histogram_quantile(m->bucket_bounds, m->bucket_counts, 0.95)
            << R"(,"p99":)" << histogram_quantile(m->bucket_bounds, m->bucket_counts, 0.99);
      } else {
        out << R"(,"value":)" << m->value;
      }
      out << "}";
    }
  }
  out << "]}\n";
}

void RunReport::write_csv(std::ostream& out) const {
  out << "key,value\n";
  auto row = [&out](const std::string& key, const auto& value) {
    csv_field(out, key);
    out << ',';
    if constexpr (std::is_convertible_v<decltype(value), std::string>) {
      csv_field(out, value);
    } else {
      out << value;
    }
    out << '\n';
  };
  row("schema", schema);
  row("tool", tool);
  row("version", version);
  row("command", command);
  row("provenance.hostname", hostname);
  row("provenance.timestamp_utc", timestamp_utc);
  row("provenance.cpu_isa_level", cpu_isa_level);
  row("provenance.git_describe", git_describe);
  row("config.class", align_class);
  row("config.approach", approach);
  row("config.isa", isa);
  row("config.matrix", matrix);
  row("config.gap_open", gap_open);
  row("config.gap_extend", gap_extend);
  row("config.threads", threads);
  row("config.sched", sched);
  row("config.engine", engine);
  row("config.prefilter", prefilter_mode);
  row("config.streamed", streamed ? 1 : 0);
  row("config.cache_engines", cache_engines ? 1 : 0);
  row("workload.queries", queries);
  row("workload.subjects", subjects);
  row("workload.alignments", alignments);
  row("workload.cells_real", cells_real);
  row("workload.cells_padded", totals.cells);
  row("perf.seconds", seconds);
  row("perf.gcups_real", gcups_real);
  row("perf.gcups_padded", gcups_padded);
  row("snapshot.live", live_snapshot ? 1 : 0);
  row("snapshot.seq", snapshot_seq);
  for (std::size_t i = 0; i < kWidthBits.size(); ++i) {
    row("widths." + std::to_string(kWidthBits[i]), width_counts[i]);
  }
  row("engine.columns", totals.columns);
  row("engine.main_epochs", totals.main_epochs);
  row("engine.corrective_epochs", totals.corrective_epochs);
  row("engine.hscan_steps", totals.hscan_steps);
  row("engine.scan_carry_cols", totals.scan_carry_cols);
  for (int b = 0; b < PassHist::kBuckets; ++b) {
    row("engine.lazyf_pass_hist." + pass_bucket_label(b),
        totals.lazyf_hist.counts[static_cast<std::size_t>(b)]);
    row("engine.hscan_step_hist." + pass_bucket_label(b),
        totals.hscan_hist.counts[static_cast<std::size_t>(b)]);
    row("engine.prefix_pass_hist." + pass_bucket_label(b),
        totals.prefix_hist.counts[static_cast<std::size_t>(b)]);
  }
  for (std::size_t a = 0; a < totals.approach_counts.size(); ++a) {
    row(std::string("engine.approaches.") + to_string(static_cast<Approach>(a)),
        totals.approach_counts[a]);
  }
  row("engine_cache.lookups", cache_lookups);
  row("engine_cache.hits", cache_hits);
  row("engine_cache.builds", cache_builds);
  row("engine_cache.evictions", cache_evictions);
  row("engine_cache.profile_sets", cache_profile_sets);
  row("profile_cache.lookups", profile_cache_lookups);
  row("profile_cache.hits", profile_cache_hits);
  row("profile_cache.builds", profile_cache_builds);
  row("profile_cache.evictions", profile_cache_evictions);
  row("profile_cache.fast_builds", profile_cache_fast_builds);
  row("quarantine.lenient", lenient ? 1 : 0);
  row("quarantine.max_errors", max_errors);
  row("quarantine.records", quarantined);
  row("quarantine.malformed", quarantined_malformed);
  row("quarantine.oversized", quarantined_oversized);
  row("quarantine.truncated", quarantined_truncated);
  row("quarantine.worker_errors", worker_errors);
  row("quarantine.shard_retries", shard_retries);
  row("quarantine.records_dropped", records_dropped);
  row("prefilter.enabled", prefilter_enabled ? 1 : 0);
  row("prefilter.screened", prefilter_screened);
  row("prefilter.escaped", prefilter_escaped);
  row("prefilter.escalated", prefilter_escalated);
  row("prefilter.saturated", prefilter_saturated);
  row("prefilter.screen_failures", prefilter_screen_failures);
  row("prefilter.chunks", prefilter_chunks);
  row("prefilter.screen_cells", prefilter_screen_cells);
  row("prefilter.selectivity", prefilter_selectivity);
  for (int c = 0; c < instrument::kOpCategoryCount; ++c) {
    row(std::string("op_counts.") +
            instrument::to_string(static_cast<instrument::OpCategory>(c)),
        op_counts[static_cast<std::size_t>(c)]);
  }
  const std::array<int, kStageCount> stage_order = stages_by_name();
  for (const int s : stage_order) {
    const StageStats& st = stages[static_cast<std::size_t>(s)];
    const std::string key = std::string("stages.") + to_string(static_cast<Stage>(s));
    row(key + ".spans", st.spans);
    row(key + ".seconds", st.seconds());
  }
  row("hw.available", hw_available ? 1 : 0);
  row("hw.reason", hw_reason);
  auto hw_rows = [&row](const std::string& prefix, const HwCounts& c) {
    row(prefix + ".cycles", c.cycles);
    row(prefix + ".instructions", c.instructions);
    row(prefix + ".ipc", c.ipc());
    row(prefix + ".branch_misses", c.branch_misses);
    row(prefix + ".l1d_misses", c.l1d_misses);
    row(prefix + ".llc_misses", c.llc_misses);
  };
  hw_rows("hw.run", hw_run);
  for (const int s : stage_order) {
    hw_rows(std::string("hw.stages.") + to_string(static_cast<Stage>(s)),
            hw_stages[static_cast<std::size_t>(s)]);
  }
  for (const MetricSample* m : metrics_by_name(metrics)) {
    if (m->kind == MetricSample::Kind::Histogram) {
      row("metrics." + m->name + ".count", m->value);
      row("metrics." + m->name + ".sum", m->sum);
      row("metrics." + m->name + ".p50",
          histogram_quantile(m->bucket_bounds, m->bucket_counts, 0.50));
      row("metrics." + m->name + ".p95",
          histogram_quantile(m->bucket_bounds, m->bucket_counts, 0.95));
      row("metrics." + m->name + ".p99",
          histogram_quantile(m->bucket_bounds, m->bucket_counts, 0.99));
      for (std::size_t b = 0; b < m->bucket_counts.size(); ++b) {
        row("metrics." + m->name + "." + metric_bucket_label(m->bucket_bounds, b),
            m->bucket_counts[b]);
      }
    } else {
      row("metrics." + m->name, m->value);
    }
  }
}

void RunReport::write_file(const std::string& path) const {
  // Atomic temp-file + rename (obs/flush.hpp): a reader — or a kill — never
  // sees a truncated report, only the previous complete one or this one.
  atomic_write_file(path, [this, &path](std::ostream& out) {
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
      write_csv(out);
    } else {
      write_json(out);
    }
  });
}

std::string RunReport::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace valign::obs
