// BenchReport: the schema-versioned benchmark artifact ("valign.bench_report/1")
// that records per-scenario timings with repetition spread, throughput, HW
// counters when available, and full provenance — the trajectory file
// (BENCH_<n>.json) every perf PR is judged by.
//
// Unlike RunReport (one run's metrics snapshot), a BenchReport is a *set of
// named scenarios*, each timed N times, so two reports from different
// commits can be compared scenario-by-scenario with a noise-aware threshold
// (`valign bench-diff`, src/valign/apps/bench_diff.hpp). That comparison is
// why this module also parses: read_file() round-trips what write_file()
// emits (and tolerates added keys within the same major schema version).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "valign/obs/perf.hpp"

namespace valign::obs {

inline constexpr const char* kBenchReportSchema = "valign.bench_report/1";

/// One benchmark scenario: a named workload timed `reps` times.
struct BenchScenario {
  std::string name;
  int reps = 0;
  double sec_min = 0.0;
  double sec_median = 0.0;
  double sec_max = 0.0;
  std::uint64_t cells = 0;     ///< DP cells per repetition (0 = not cell-based).
  double gcups_median = 0.0;   ///< cells / sec_median / 1e9.
  bool hw_available = false;   ///< Counters below are real (median-seconds rep).
  HwCounts hw{};
};

/// Where the numbers came from: host, CPU, ISA, build, time.
struct BenchProvenance {
  std::string tool_version;   ///< valign::version().
  std::string isa;            ///< Best ISA resolved on the producing host.
  std::string cpu_model;      ///< /proc/cpuinfo "model name".
  std::string hostname;
  std::string timestamp_utc;  ///< ISO 8601 Z.
  std::string git_describe;   ///< Baked in at CMake configure time.
  std::string compiler;
  int threads = 1;            ///< Hardware concurrency of the host.
  double bench_scale = 1.0;   ///< VALIGN_BENCH_SCALE in effect.
};

struct BenchReport {
  std::string schema = kBenchReportSchema;
  std::string command;  ///< Producing binary ("bench_runtime", ...).
  BenchProvenance provenance;
  /// Why HW counters are absent when no scenario carries them (probe reason
  /// or "not requested"); empty when counters were collected.
  std::string hw_reason;
  std::vector<BenchScenario> scenarios;

  [[nodiscard]] const BenchScenario* find(const std::string& name) const;

  void write_json(std::ostream& out) const;
  /// Throws valign::Error when the file cannot be opened.
  void write_file(const std::string& path) const;
  [[nodiscard]] std::string json() const;

  /// Parses a serialized report. Throws valign::Error on malformed JSON, a
  /// wrong/missing schema id, or a major version other than 1; added keys
  /// within the major version are ignored (consumer tolerance).
  [[nodiscard]] static BenchReport from_json(const std::string& text);
  [[nodiscard]] static BenchReport read_file(const std::string& path);
};

}  // namespace valign::obs
