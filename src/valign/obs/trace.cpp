#include "valign/obs/trace.hpp"

namespace valign::obs {

namespace {
std::atomic<bool> g_trace_enabled{false};
}  // namespace

const char* to_string(Stage s) {
  switch (s) {
    case Stage::Parse: return "parse";
    case Stage::Schedule: return "schedule";
    case Stage::Align: return "align";
    case Stage::Reduce: return "reduce";
    case Stage::Report: return "report";
    case Stage::kCount_: break;
  }
  return "?";
}

StageStats StageTable::stats(Stage s) const noexcept {
  const Slot& slot = slots_[static_cast<std::size_t>(s)];
  StageStats out;
  out.spans = slot.spans.load(std::memory_order_relaxed);
  out.ns_total = slot.ns_total.load(std::memory_order_relaxed);
  out.ns_max = slot.ns_max.load(std::memory_order_relaxed);
  return out;
}

std::array<StageStats, kStageCount> StageTable::snapshot() const noexcept {
  std::array<StageStats, kStageCount> out{};
  for (int s = 0; s < kStageCount; ++s) out[static_cast<std::size_t>(s)] =
      stats(static_cast<Stage>(s));
  return out;
}

void StageTable::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.spans.store(0, std::memory_order_relaxed);
    slot.ns_total.store(0, std::memory_order_relaxed);
    slot.ns_max.store(0, std::memory_order_relaxed);
  }
}

StageTable& StageTable::global() {
  static StageTable t;
  return t;
}

bool trace_enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::span<const std::uint64_t> block_latency_bounds_us() noexcept {
  static constexpr std::uint64_t kBounds[] = {10,    40,    160,   640,
                                              2'560, 10'240, 40'960};
  return kBounds;
}

}  // namespace valign::obs
